package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"spequlos/internal/core"
)

// InformationService exposes the Information module over HTTP:
//
//	POST /batches                     register a batch for monitoring
//	POST /batches/{id}/samples       append a monitoring sample
//	GET  /batches/{id}               batch status summary
//	GET  /batches                    list tracked batch IDs
//	GET  /stats                      archive size and service uptime
//
// Samples arrive from DG-side monitors (a few hundred bytes per minute per
// BoT, as §3.2 notes), so one Information service can archive many BoTs and
// infrastructures simultaneously.
type InformationService struct {
	mu   sync.RWMutex
	info *core.Information
	// Now is the service clock. Emulated deployments replace it with the
	// simulation's virtual clock so the module never mixes virtual and
	// real time (see internal/emul).
	Now   func() time.Time
	start time.Time
}

// NewInformationService wraps an Information archive.
func NewInformationService(info *core.Information) *InformationService {
	return &InformationService{info: info, Now: time.Now, start: time.Now()}
}

// SetClock replaces the service clock and re-anchors the uptime origin.
func (s *InformationService) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Now = now
	s.start = now()
}

// InfoStats is the archive summary served at GET /stats.
type InfoStats struct {
	Batches       int     `json:"batches"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// TrackRequest registers a batch.
type TrackRequest struct {
	BatchID     string  `json:"batch_id"`
	EnvKey      string  `json:"env_key"`
	Size        int     `json:"size"`
	SubmittedAt float64 `json:"submitted_at"`
}

// BatchStatus is the monitoring summary of one batch. It carries everything
// a remote Oracle needs to evaluate any trigger strategy: threshold
// fractions plus the execution-variance series summary (§3.5).
type BatchStatus struct {
	BatchID           string      `json:"batch_id"`
	EnvKey            string      `json:"env_key"`
	Size              int         `json:"size"`
	Samples           int         `json:"samples"`
	CompletedFraction float64     `json:"completed_fraction"`
	AssignedFraction  float64     `json:"assigned_fraction"`
	Done              bool        `json:"done"`
	CompletedAt       float64     `json:"completed_at"`
	LastSample        core.Sample `json:"last_sample"`
	// ExecVariance is var(c) at the current completion fraction;
	// MaxVarianceFirstHalf is max var(x) for x ≤ 50%. Both are -1 when
	// not yet defined.
	ExecVariance         float64 `json:"exec_variance"`
	MaxVarianceFirstHalf float64 `json:"max_variance_first_half"`
	// TC50 is tc(0.5) (elapsed seconds), or -1 before half completion;
	// the Oracle's prediction base and calibration input.
	TC50 float64 `json:"tc50"`
}

func statusOf(bi *core.BatchInfo) BatchStatus {
	st := BatchStatus{
		BatchID: bi.BatchID, EnvKey: bi.EnvKey, Size: bi.Size,
		Samples:           len(bi.Samples),
		CompletedFraction: bi.CompletedFraction(),
		AssignedFraction:  bi.AssignedFraction(),
		Done:              bi.Done(),
		CompletedAt:       bi.CompletedAt,
		LastSample:        bi.Last(),
		ExecVariance:      -1, MaxVarianceFirstHalf: -1, TC50: -1,
	}
	if v, ok := bi.ExecutionVariance(st.CompletedFraction); ok {
		st.ExecVariance = v
	}
	if st.CompletedFraction >= 0.5 {
		st.MaxVarianceFirstHalf = bi.MaxExecutionVarianceUpTo(0.5)
	}
	if tc, ok := bi.TimeAtCompletion(0.5); ok {
		st.TC50 = tc
	}
	return st
}

// ServeHTTP implements http.Handler.
func (s *InformationService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/batches":
		var req TrackRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Size <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("size must be positive"))
			return
		}
		s.mu.Lock()
		_, err := s.info.Track(req.BatchID, req.EnvKey, req.Size, req.SubmittedAt)
		s.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"batch_id": req.BatchID})

	case r.Method == http.MethodPost && pathTail(r.URL.Path, "/batches/") != "" &&
		len(r.URL.Path) > len("/batches/") && hasSuffixSegment(r.URL.Path, "samples"):
		id := trimSegment(pathTail(r.URL.Path, "/batches/"), "samples")
		var sample core.Sample
		if err := readJSON(r, &sample); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		bi := s.info.Get(id)
		if bi != nil {
			bi.AddSample(bi.SubmittedAt+sample.T, sample.Completed, sample.Assigned, sample.Queued, sample.Running)
		}
		s.mu.Unlock()
		if bi == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("batch %q not tracked", id))
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"batch_id": id})

	case r.Method == http.MethodGet && r.URL.Path == "/batches":
		s.mu.RLock()
		ids := s.info.BatchIDs()
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, ids)

	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		s.mu.RLock()
		st := InfoStats{
			Batches:       s.info.Count(),
			UptimeSeconds: s.Now().Sub(s.start).Seconds(),
		}
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, st)

	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/batches/") != "":
		id := pathTail(r.URL.Path, "/batches/")
		s.mu.RLock()
		bi := s.info.Get(id)
		var st BatchStatus
		if bi != nil {
			st = statusOf(bi)
		}
		s.mu.RUnlock()
		if bi == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("batch %q not tracked", id))
			return
		}
		writeJSON(w, http.StatusOK, st)

	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// Info exposes the wrapped archive (used by co-located modules).
func (s *InformationService) Info() *core.Information { return s.info }

// Locked runs fn with the service lock held, for co-located readers that
// need a consistent BatchInfo view.
func (s *InformationService) Locked(fn func(*core.Information)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.info)
}

func hasSuffixSegment(path, seg string) bool {
	t := pathTail(path, "/batches/")
	parts := splitSegments(t)
	return len(parts) == 2 && parts[1] == seg
}

func trimSegment(tail, seg string) string {
	parts := splitSegments(tail)
	if len(parts) == 2 && parts[1] == seg {
		return parts[0]
	}
	return tail
}

func splitSegments(s string) []string {
	var out []string
	for _, p := range bytes.Split([]byte(s), []byte("/")) {
		if len(p) > 0 {
			out = append(out, string(p))
		}
	}
	return out
}

// InformationClient is the typed client of the Information service.
type InformationClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewInformationClient builds a client for the given base URL.
func NewInformationClient(baseURL string) *InformationClient {
	return &InformationClient{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *InformationClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

// Track registers a batch.
func (c *InformationClient) Track(req TrackRequest) error {
	return c.post("/batches", req, nil)
}

// AddSample appends a monitoring sample for a batch.
func (c *InformationClient) AddSample(batchID string, s core.Sample) error {
	return c.post("/batches/"+batchID+"/samples", s, nil)
}

// Status fetches a batch summary.
func (c *InformationClient) Status(batchID string) (BatchStatus, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/batches/" + batchID)
	if err != nil {
		return BatchStatus{}, err
	}
	var st BatchStatus
	err = decodeReply(resp, &st)
	return st, err
}

// Stats fetches the archive summary.
func (c *InformationClient) Stats() (InfoStats, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/stats")
	if err != nil {
		return InfoStats{}, err
	}
	var st InfoStats
	err = decodeReply(resp, &st)
	return st, err
}

// List fetches the tracked batch IDs.
func (c *InformationClient) List() ([]string, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/batches")
	if err != nil {
		return nil, err
	}
	var ids []string
	err = decodeReply(resp, &ids)
	return ids, err
}
