package service

import (
	"net/http"
	"net/http/httptest"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
)

// Stack is a complete SpeQuloS service deployment: the four modules and the
// clients wiring them together. Modules only ever talk through their HTTP
// clients — even when co-located — so a Stack deployed on one host behaves
// identically to one split across networks (Fig 8).
type Stack struct {
	Information *InformationService
	Credit      *CreditService
	Oracle      *OracleService
	Scheduler   *SchedulerService

	InfoClient    *InformationClient
	CreditClient  *CreditClient
	OracleClient  *OracleClient
	SchedulerAddr string

	servers []*httptest.Server
}

// StackConfig parameterizes a deployment.
type StackConfig struct {
	Strategy core.Strategy
	Registry *cloud.Registry
	DG       DGGateway
}

// NewTestStack starts every module on its own loopback HTTP server — a
// faithful miniature of the paper's distributed deployment. Close releases
// the listeners.
func NewTestStack(cfg StackConfig) *Stack {
	if cfg.Registry == nil {
		cfg.Registry = cloud.DefaultRegistry()
	}
	st := &Stack{}

	st.Information = NewInformationService(core.NewInformation())
	infoSrv := httptest.NewServer(st.Information)
	st.servers = append(st.servers, infoSrv)
	st.InfoClient = NewInformationClient(infoSrv.URL)

	st.Credit = NewCreditService(core.NewCreditSystem())
	creditSrv := httptest.NewServer(st.Credit)
	st.servers = append(st.servers, creditSrv)
	st.CreditClient = NewCreditClient(creditSrv.URL)

	st.Oracle = NewOracleService(core.NewOracle(cfg.Strategy), st.InfoClient)
	oracleSrv := httptest.NewServer(st.Oracle)
	st.servers = append(st.servers, oracleSrv)
	st.OracleClient = NewOracleClient(oracleSrv.URL)

	st.Scheduler = NewSchedulerService(st.InfoClient, st.CreditClient, st.OracleClient, cfg.Registry, cfg.DG)
	schedSrv := httptest.NewServer(st.Scheduler)
	st.servers = append(st.servers, schedSrv)
	st.SchedulerAddr = schedSrv.URL

	return st
}

// Close shuts every module server down.
func (s *Stack) Close() {
	for _, srv := range s.servers {
		srv.Close()
	}
}

// SetClock injects the wall clock of every clock-bearing module. The
// emulation harness (internal/emul) uses it to run the whole deployment on
// the simulation's virtual clock; production deployments keep time.Now.
func (s *Stack) SetClock(now func() time.Time) {
	s.Information.SetClock(now)
	s.Scheduler.Now = now
}

// Mux mounts all four modules under one HTTP mux with path prefixes —
// the single-host deployment used by cmd/spequlosd:
//
//	/information/…  /credit/…  /oracle/…  /scheduler/…
func Mux(info *InformationService, credit *CreditService, oracle *OracleService, sched *SchedulerService) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/information/", http.StripPrefix("/information", info))
	mux.Handle("/credit/", http.StripPrefix("/credit", credit))
	mux.Handle("/oracle/", http.StripPrefix("/oracle", oracle))
	mux.Handle("/scheduler/", http.StripPrefix("/scheduler", sched))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}
