package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
)

// multiDG scripts per-batch progress under test control and counts every
// gateway round-trip, so tests can assert the monitor loop's poll economy.
type multiDG struct {
	mu          sync.Mutex
	progress    map[string]middleware.Progress
	singleCalls int
	batchCalls  int
}

func newMultiDG() *multiDG { return &multiDG{progress: map[string]middleware.Progress{}} }

func (d *multiDG) set(id string, p middleware.Progress) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.progress[id] = p
}

func (d *multiDG) Progress(id string) (middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.singleCalls++
	return d.progress[id], nil
}

func (d *multiDG) ProgressBatch(ids []string) (map[string]middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batchCalls++
	out := make(map[string]middleware.Progress, len(ids))
	for _, id := range ids {
		out[id] = d.progress[id]
	}
	return out, nil
}

func (d *multiDG) WorkerURL() string { return "http://dg.example:4321" }

func (d *multiDG) calls() (single, batch int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.singleCalls, d.batchCalls
}

// singleOnlyDG hides ProgressBatch, forcing the per-batch polling fallback.
type singleOnlyDG struct{ d *multiDG }

func (s singleOnlyDG) Progress(id string) (middleware.Progress, error) { return s.d.Progress(id) }
func (s singleOnlyDG) WorkerURL() string                               { return s.d.WorkerURL() }

var _ BatchProgressGateway = (*multiDG)(nil)

// TestStepBatchedPollingIsO1 is the tentpole scaling assertion: with a
// gateway that supports aggregated progress queries, one monitor tick over
// N registered batches costs exactly ONE gateway poll, not N.
func TestStepBatchedPollingIsO1(t *testing.T) {
	const batches = 64
	dg := newMultiDG()
	stack := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: dg})
	defer stack.Close()

	for i := 0; i < batches; i++ {
		id := fmt.Sprintf("b%03d", i)
		dg.set(id, middleware.Progress{Size: 10, Arrived: 10, Running: 10})
		if err := stack.Scheduler.RegisterQoS(QoSRequest{
			User: "u", BatchID: id, EnvKey: "e", Size: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := stack.Scheduler.Step(); err != nil {
		t.Fatal(err)
	}
	single, batch := dg.calls()
	if batch != 1 {
		t.Fatalf("aggregated polls per tick = %d, want 1", batch)
	}
	if single != 0 {
		t.Fatalf("per-batch polls = %d, want 0 (gateway supports batching)", single)
	}

	// Two more ticks stay O(1) each.
	for i := 0; i < 2; i++ {
		if err := stack.Scheduler.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, batch := dg.calls(); batch != 3 {
		t.Fatalf("aggregated polls after 3 ticks = %d, want 3", batch)
	}
}

// TestStepFallbackPollsPerBatch pins the fallback: a gateway without
// ProgressBatch is polled once per registered batch, preserving the
// pre-batching wire behavior for external adapters.
func TestStepFallbackPollsPerBatch(t *testing.T) {
	const batches = 8
	dg := newMultiDG()
	stack := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: singleOnlyDG{dg}})
	defer stack.Close()

	for i := 0; i < batches; i++ {
		id := fmt.Sprintf("b%03d", i)
		dg.set(id, middleware.Progress{Size: 10, Arrived: 10, Running: 10})
		if err := stack.Scheduler.RegisterQoS(QoSRequest{
			User: "u", BatchID: id, EnvKey: "e", Size: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := stack.Scheduler.Step(); err != nil {
		t.Fatal(err)
	}
	single, batch := dg.calls()
	if single != batches || batch != 0 {
		t.Fatalf("fallback polls = (single %d, batch %d), want (%d, 0)", single, batch, batches)
	}
}

// twoBatchOutcome is one batch's end state in the equivalence comparison.
type twoBatchOutcome struct {
	Status QoSStatus
	Billed float64
}

// driveTwoBatches runs an identical scripted 2-batch QoS episode through a
// scheduler wired to the given gateway and returns the per-batch outcomes.
// The script crosses the 9C trigger threshold, finishes batch a before
// batch b, and advances a virtual clock one monitor period per step.
func driveTwoBatches(t *testing.T, dg DGGateway, script *multiDG) map[string]twoBatchOutcome {
	t.Helper()
	driver := cloud.NewMockDriver("mock", time.Second, 0.10)
	stack := NewTestStack(StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(driver),
		DG:       dg,
	})
	defer stack.Close()
	epoch := time.Unix(0, 0).UTC()
	now := epoch
	stack.SetClock(func() time.Time { return now })
	driver.SetClock(func() time.Time { return now })

	for _, id := range []string{"a", "b"} {
		script.set(id, middleware.Progress{Size: 100, Arrived: 100, Running: 100})
		if err := stack.CreditClient.Deposit("u", 200); err != nil {
			t.Fatal(err)
		}
		if err := stack.Scheduler.RegisterQoS(QoSRequest{
			User: "u", BatchID: id, EnvKey: "e/" + id, Size: 100,
			Credits: 90, Provider: "mock", Image: "img",
		}); err != nil {
			t.Fatal(err)
		}
	}

	// completed(a), completed(b) per scripted step.
	steps := [][2]int{{10, 5}, {50, 40}, {92, 80}, {96, 91}, {100, 95}, {100, 100}}
	for _, st := range steps {
		now = now.Add(60 * time.Second)
		script.set("a", middleware.Progress{Size: 100, Arrived: 100,
			Completed: st[0], EverAssigned: 100, Running: 100 - st[0]})
		script.set("b", middleware.Progress{Size: 100, Arrived: 100,
			Completed: st[1], EverAssigned: 100, Running: 100 - st[1]})
		if err := stack.Scheduler.Step(); err != nil {
			t.Fatal(err)
		}
	}

	out := map[string]twoBatchOutcome{}
	for _, id := range []string{"a", "b"} {
		st, err := stack.Scheduler.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		order, err := stack.CreditClient.OrderOf(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = twoBatchOutcome{Status: st, Billed: order.Billed}
	}
	return out
}

// TestBatchedStepMatchesPerBatchStep is the acceptance equivalence: an
// identical 2-batch cell driven through the aggregated poll and through
// per-batch polling produces the same per-batch trigger, fleet, credits
// and completion state.
func TestBatchedStepMatchesPerBatchStep(t *testing.T) {
	batchedScript := newMultiDG()
	batched := driveTwoBatches(t, batchedScript, batchedScript)

	seqScript := newMultiDG()
	sequential := driveTwoBatches(t, singleOnlyDG{seqScript}, seqScript)

	if _, bc := batchedScript.calls(); bc == 0 {
		t.Fatal("batched run never used the aggregated poll")
	}
	if sc, bc := seqScript.calls(); bc != 0 || sc == 0 {
		t.Fatalf("sequential run polls = (single %d, batch %d)", sc, bc)
	}

	for key, want := range sequential {
		got, ok := batched[key]
		if !ok {
			t.Fatalf("batched run missing %q", key)
		}
		if got.Status.Started != want.Status.Started ||
			got.Status.Exhausted != want.Status.Exhausted ||
			got.Status.Finalized != want.Status.Finalized ||
			got.Status.TriggeredAt != want.Status.TriggeredAt ||
			len(got.Status.Instances) != len(want.Status.Instances) ||
			got.Billed != want.Billed {
			t.Errorf("%s diverged:\n  batched:    %+v\n  sequential: %+v", key, got, want)
		}
	}
	// The episode must have exercised the cloud path, or the comparison is
	// vacuous.
	if !batched["a"].Status.Started || batched["a"].Billed <= 0 {
		t.Fatalf("cloud support never engaged: %+v", batched["a"])
	}
}

// TestTierAdmissionCaps pins the deployable Scheduler's tier gating: under a
// fleet cap of one, only the first eligible batch gets cloud workers, the
// denied batch keeps retrying, and the slot passes to it once the holder
// finalizes. Registration rejects unknown tier names outright.
func TestTierAdmissionCaps(t *testing.T) {
	script := newMultiDG()
	driver := cloud.NewMockDriver("mock", time.Second, 0.10)
	stack := NewTestStack(StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(driver),
		DG:       script,
	})
	defer stack.Close()
	epoch := time.Unix(0, 0).UTC()
	now := epoch
	stack.SetClock(func() time.Time { return now })
	driver.SetClock(func() time.Time { return now })

	stack.Scheduler.TierPolicy = core.DefaultTierPolicy()
	stack.Scheduler.TierPolicy.FleetCap = 1

	if err := stack.Scheduler.RegisterQoS(QoSRequest{
		User: "u", BatchID: "x", EnvKey: "e", Size: 10, Tier: "platinum",
	}); err == nil {
		t.Fatal("unknown tier accepted")
	}

	for _, b := range []struct{ id, tier string }{{"ent", "enterprise"}, {"fr", "free"}} {
		script.set(b.id, middleware.Progress{Size: 100, Arrived: 100,
			Completed: 92, EverAssigned: 100, Running: 8})
		if err := stack.CreditClient.Deposit("u", 200); err != nil {
			t.Fatal(err)
		}
		if err := stack.Scheduler.RegisterQoS(QoSRequest{
			User: "u", BatchID: b.id, EnvKey: "e", Size: 100,
			Credits: 90, Tier: b.tier, Provider: "mock", Image: "img",
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Both batches are past the trigger; the single fleet slot goes to the
	// first stepped batch and the other is denied for as long as it is held.
	for i := 0; i < 3; i++ {
		now = now.Add(60 * time.Second)
		if err := stack.Scheduler.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ent, _ := stack.Scheduler.Status("ent")
	fr, _ := stack.Scheduler.Status("fr")
	if !ent.Started || ent.Tier != "enterprise" {
		t.Fatalf("enterprise batch not serviced: %+v", ent)
	}
	if fr.Started {
		t.Fatalf("free batch started despite full fleet: %+v", fr)
	}

	// The holder finishes; its finalization frees the slot and the denied
	// batch is admitted on the next tick.
	script.set("ent", middleware.Progress{Size: 100, Arrived: 100,
		Completed: 100, EverAssigned: 100})
	for i := 0; i < 2; i++ {
		now = now.Add(60 * time.Second)
		if err := stack.Scheduler.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ent, _ = stack.Scheduler.Status("ent")
	fr, _ = stack.Scheduler.Status("fr")
	if !ent.Finalized {
		t.Fatalf("enterprise batch did not finalize: %+v", ent)
	}
	if !fr.Started {
		t.Fatalf("free batch still denied after the slot freed: %+v", fr)
	}
}
