// Package spequlos is the public API of this reproduction of "SpeQuloS: A
// QoS Service for BoT Applications Using Best Effort Distributed Computing
// Infrastructures" (Delamare, Fedak, Kondo, Lodygensky — HPDC 2012 / INRIA
// RR-7890).
//
// SpeQuloS improves the Quality of Service of Bag-of-Tasks applications
// running on best-effort infrastructures (desktop grids, best-effort grid
// queues, cloud spot instances) by monitoring BoT progress and dynamically
// provisioning stable cloud workers to execute the critical tail of the
// BoT. This package re-exports the building blocks:
//
//   - workload and infrastructure models (BoT classes of Table 3, BE-DCI
//     availability traces of Table 2),
//   - the BOINC and XtremWeb-HEP middleware simulators,
//   - the SpeQuloS service modules (Information, Credit System, Oracle,
//     Scheduler) and every provisioning strategy of §3.5,
//   - the campaign engine (plan unique simulations once, execute each
//     exactly once on a worker pool, persist and resume the result store)
//     and the trace-driven experiment harness that derives each table and
//     figure of the paper's evaluation from it,
//   - the deployable HTTP service layer (one web service per module),
//   - the emulation mode, which runs that HTTP stack inside the simulation
//     on a virtual clock and proves cell by cell that it matches the
//     in-process simulator (Emulate, RunConformance).
//
// Quick start — compare one execution with and without SpeQuloS:
//
//	base := spequlos.Simulate(spequlos.Scenario{
//	    Profile: spequlos.QuickProfile(), Middleware: "XWHEP",
//	    TraceName: "seti", BotClass: "SMALL",
//	})
//	st := spequlos.DefaultStrategy()
//	speq := spequlos.Simulate(spequlos.Scenario{
//	    Profile: spequlos.QuickProfile(), Middleware: "XWHEP",
//	    TraceName: "seti", BotClass: "SMALL", Strategy: &st,
//	})
//	fmt.Printf("speedup %.2fx\n", base.CompletionTime/speq.CompletionTime)
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package spequlos

import (
	"context"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/emul"
	"spequlos/internal/experiments"
)

// Strategy combines a trigger (when to start cloud workers), a sizing rule
// (how many) and a deployment mode (how they attach), named like the paper:
// 9C-C-R = Completion threshold, Conservative, Reschedule.
type Strategy = core.Strategy

// Prediction is the Oracle's completion-time prediction with its historical
// uncertainty (§3.4).
type Prediction = core.Prediction

// Trigger strategy implementations (§3.5).
type (
	// CompletionThreshold starts cloud workers at a completed fraction.
	CompletionThreshold = core.CompletionThreshold
	// AssignmentThreshold starts cloud workers at an assigned fraction.
	AssignmentThreshold = core.AssignmentThreshold
	// ExecutionVariance detects the tail from tc(x) − ta(x) doubling.
	ExecutionVariance = core.ExecutionVariance
	// Greedy starts the whole credit allowance at once.
	Greedy = core.Greedy
	// Conservative sizes the fleet to survive the estimated remaining time.
	Conservative = core.Conservative
)

// Deployment modes (§3.5).
const (
	Flat             = core.Flat
	Reschedule       = core.Reschedule
	CloudDuplication = core.CloudDuplication
)

// CreditsPerCPUHour is the Credit System exchange rate (§3.3).
const CreditsPerCPUHour = core.CreditsPerCPUHour

// DefaultStrategy returns 9C-C-R, the paper's recommended combination.
func DefaultStrategy() Strategy { return core.DefaultStrategy() }

// AllStrategies enumerates the 18 combinations evaluated in Figs 4 and 5.
func AllStrategies() []Strategy { return core.AllStrategies() }

// StrategyByLabel parses a label like "9A-G-D".
func StrategyByLabel(label string) (Strategy, error) { return core.StrategyByLabel(label) }

// Scenario selects one simulated execution: middleware (BOINC or XWHEP),
// BE-DCI trace (seti, nd, g5klyo, g5kgre, spot10, spot100), BoT class
// (SMALL, BIG, RANDOM), submission offset, and optionally a SpeQuloS
// strategy (nil = baseline).
type Scenario = experiments.Scenario

// Result is the outcome and metrics of one simulated execution.
type Result = experiments.Result

// Profile scales the experiment matrix (BoT sizes, node pools, offsets).
type Profile = experiments.Profile

// QuickProfile returns the benchmark-scale profile.
func QuickProfile() Profile { return experiments.Quick() }

// StandardProfile returns the EXPERIMENTS.md-scale profile.
func StandardProfile() Profile { return experiments.Standard() }

// FullProfile returns the paper-scale profile.
func FullProfile() Profile { return experiments.Full() }

// StressProfile returns the kernel stress profile (10× quick churn over a
// 30-day horizon).
func StressProfile() Profile { return experiments.Stress() }

// CrowdProfile returns the multi-tenant stress profile: one 500-node trace
// serving 200 concurrent QoS batches, each with its own credit order and
// trigger, monitored through one aggregated DG poll per tick. Scenario
// cells under it carry Profile.Batches interleaved BoTs and report
// per-batch outcomes in Result.Batches.
func CrowdProfile() Profile { return experiments.Crowd() }

// Simulate runs one scenario to completion and returns its metrics. Runs
// are deterministic in the scenario's seed; pairing a baseline and a
// SpeQuloS run of the same scenario reproduces the paper's paired
// comparisons.
func Simulate(sc Scenario) Result { return experiments.Run(sc) }

// Campaign plans a set of unique simulation jobs and executes each exactly
// once on a bounded worker pool, filling a ResultStore. Campaigns stream
// progress events, honour context cancellation, and resume from a
// previously saved store.
type Campaign = campaign.Campaign

// CampaignJob is one unique simulation of a campaign, identified by a
// content key (profile + scenario + strategy label + seed).
type CampaignJob = campaign.Job

// CampaignPlan is an ordered, deduplicated set of campaign jobs.
type CampaignPlan = campaign.Plan

// CampaignEvent is one streaming progress notification of a campaign run.
type CampaignEvent = campaign.Event

// CampaignStats summarizes a campaign run (planned/executed/cached jobs,
// simulation events, wall clock).
type CampaignStats = campaign.Stats

// ResultStore is the keyed, concurrency-safe store campaigns fill; it
// serializes to JSON for persistence and resumption.
type ResultStore = campaign.ResultStore

// StoreEntry is one stored simulation outcome.
type StoreEntry = campaign.Entry

// NewResultStore returns an empty result store.
func NewResultStore() *ResultStore { return campaign.NewResultStore() }

// LoadResultStore reads a store previously written with SaveFile.
func LoadResultStore(path string) (*ResultStore, error) { return campaign.LoadFile(path) }

// NewCampaign builds a campaign over the given jobs, deduplicating by
// content key.
func NewCampaign(p Profile, jobs ...CampaignJob) *Campaign { return campaign.New(p, jobs...) }

// RunCampaign executes every job not already present in store, bounded by
// the campaign's parallelism, until done or ctx is cancelled. Partial
// results stay in the store, so a cancelled campaign resumes by running
// again with the same store.
func RunCampaign(ctx context.Context, c *Campaign, store *ResultStore) (CampaignStats, error) {
	return c.Run(ctx, store)
}

// EmulationOutcome is the result of one scenario executed through the
// deployable HTTP service stack on the virtual clock.
type EmulationOutcome = emul.Outcome

// ConformanceSpec scopes a conformance campaign: the scenario subset run
// both in-process and through the HTTP stack, and the comparison
// tolerances.
type ConformanceSpec = emul.Spec

// ConformanceReport is the per-cell agreement report of a conformance
// campaign.
type ConformanceReport = emul.Report

// ConformanceCell is one cell of a conformance report.
type ConformanceCell = emul.Cell

// Emulate executes one scenario (which must carry a strategy) through the
// deployable HTTP service stack — all four modules on loopback HTTP servers,
// clocks virtualized, the Desktop Grid simulated behind the gateway wire
// format — and returns its outcome. Emulated runs are deterministic and
// directly comparable to Simulate on the same scenario.
func Emulate(sc Scenario) (EmulationOutcome, error) { return emul.RunCell(sc) }

// QuickConformanceSpec returns the quick-profile conformance subset CI runs:
// every middleware, two contrasting traces, and strategies covering every
// trigger, sizing and deployment.
func QuickConformanceSpec() ConformanceSpec { return emul.QuickSpec() }

// RunConformance executes every cell of the spec both in-process and through
// the HTTP stack and reports per-cell agreement on trigger decision, fleet
// size, credits billed and completion time.
func RunConformance(ctx context.Context, spec ConformanceSpec) (ConformanceReport, error) {
	return emul.RunConformance(ctx, spec)
}

// Middlewares lists the supported middleware names.
func Middlewares() []string { return experiments.Middlewares() }

// TraceNames lists the six BE-DCI traces of Table 2.
func TraceNames() []string { return experiments.TraceNames() }

// BotClasses lists the three workload classes of Table 3.
func BotClasses() []string { return experiments.BotClasses() }
